// Figure 21 (repo extension): online ratio tuning — the calibration
// feedback loop between an execution backend and the cost model, closed.
//
// The same skewed SHJ-PL join runs repeatedly. Iteration 1 is planned from
// the analytically instantiated cost table (Section 4.2); after each run
// the measured per-step, per-device timings are folded into an EWMA table
// that replaces the analytic unit costs, and the ratio optimizer re-runs
// on it. On the thread-pool backend the tuned iterations also switch to
// the serial-lane composition that actually describes a host pool.
//
// Shape targets: per-iteration join time is non-increasing once tuning
// kicks in (iteration N <= iteration 1); ratio drift is large at iteration
// 2 (analytic guesses -> measured optimum) and ~0 once converged; the
// final unit-cost table shows measured values where the analytic model
// guessed. Defaults to --tune=online; --tune=off shows the flat baseline.

#include <cmath>

#include "bench_common.h"
#include "coproc/ratio_tuner.h"

namespace apujoin::bench {
namespace {

constexpr int kIterations = 8;

std::vector<double> AllRatios(const coproc::JoinReport& rep) {
  std::vector<double> r = rep.build_ratios;
  r.insert(r.end(), rep.probe_ratios.begin(), rep.probe_ratios.end());
  return r;
}

double MeanDrift(const std::vector<double>& prev,
                 const std::vector<double>& cur) {
  if (prev.empty() || prev.size() != cur.size()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < prev.size(); ++i) sum += std::abs(cur[i] - prev[i]);
  return sum / static_cast<double>(prev.size());
}

void Run() {
  PrintBanner("Figure 21", "online tuning: per-iteration time & ratio drift");
  const cost::TuneMode mode =
      g_flags.tune_set ? g_flags.tune : cost::TuneMode::kOnline;
  const data::Workload w =
      MakeWorkload(Scaled(4ull << 20), Scaled(16ull << 20),
                   data::Distribution::kHighSkew);
  simcl::SimContext ctx = MakeContext();
  exec::Backend* backend = CachedBackend(&ctx);

  coproc::JoinSpec spec;
  spec.algorithm = coproc::Algorithm::kSHJ;
  spec.scheme = coproc::Scheme::kPipelined;
  ApplyBackend(&spec);
  spec.engine.tune = mode;
  std::printf("tune: %s\n\n", cost::TuneModeName(mode));

  coproc::RatioTuner tuner(mode);
  TablePrinter table(
      {"iter", "time(s)", "estimate(s)", "ratio drift", "measured steps"});
  std::vector<double> prev_ratios;
  coproc::JoinReport first;
  coproc::JoinReport last;
  for (int i = 1; i <= kIterations; ++i) {
    tuner.Prepare(&spec);
    auto report =
        coproc::ExecutePlan(backend, coproc::MakeSingleJoinPlan(w, spec));
    APU_CHECK_OK(report.status());
    APU_CHECK(report->matches == w.expected_matches);
    g_json.AddJoin(*report);

    // Steps this iteration *planned* with measured unit costs (counted
    // before absorbing the iteration's own timings).
    size_t measured = 0;
    for (const auto& s : report->steps) {
      if (tuner.calibrator().Has(s.name, simcl::DeviceId::kCpu) ||
          tuner.calibrator().Has(s.name, simcl::DeviceId::kGpu)) {
        ++measured;
      }
    }
    tuner.Absorb(*report);

    const std::vector<double> ratios = AllRatios(*report);
    table.AddRow({std::to_string(i), Secs(report->elapsed_ns),
                  Secs(report->estimated_ns),
                  TablePrinter::Fmt(MeanDrift(prev_ratios, ratios), 3),
                  std::to_string(measured) + "/" +
                      std::to_string(report->steps.size())});
    prev_ratios = ratios;
    if (i == 1) first = *report;
    last = std::move(report).value();
  }
  table.Print();

  // The swap the loop converges on: analytic vs measured unit costs.
  std::printf("\nprobe-series unit costs, analytic (iter 1) vs measured "
              "(iter %d):\n", kIterations);
  TablePrinter units({"step", "cpu ns/item (analytic)",
                      "cpu ns/item (measured)", "gpu ns/item (analytic)",
                      "gpu ns/item (measured)", "ratio"});
  for (size_t i = 0; i < last.steps.size(); ++i) {
    const auto& s0 = first.steps[i];
    const auto& s1 = last.steps[i];
    if (s1.phase != "probe") continue;
    units.AddRow({s1.name, TablePrinter::Fmt(s0.unit_cpu_ns, 2),
                  TablePrinter::Fmt(s1.unit_cpu_ns, 2),
                  TablePrinter::Fmt(s0.unit_gpu_ns, 2),
                  TablePrinter::Fmt(s1.unit_gpu_ns, 2),
                  TablePrinter::FmtPercent(s1.ratio, 0)});
  }
  units.Print();
  std::printf("\niteration %d vs iteration 1: %.2fx\n", kIterations,
              first.elapsed_ns / last.elapsed_ns);
  g_json.AddMetric("tuning_speedup_vs_iter1",
                   first.elapsed_ns / last.elapsed_ns);
}

}  // namespace
}  // namespace apujoin::bench

int main(int argc, char** argv) {
  apujoin::bench::InitBench(argc, argv);
  apujoin::bench::Run();
}
