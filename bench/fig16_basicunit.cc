// Figure 16 (+ Figures 17/18): the BasicUnit coarse-grained dynamic chunk
// scheduler vs DD and fine-grained PL, with the per-phase effective
// CPU/GPU ratios BasicUnit converges to.
//
// Shape targets: SHJ-PL ~31% and PHJ-PL ~25% faster than BasicUnit in the
// paper; BasicUnit's ratio is one flat number per phase (Figures 17/18),
// unlike PL's per-step schedule.

#include "bench_common.h"

namespace apujoin::bench {
namespace {

using coproc::JoinSpec;

void Run() {
  PrintBanner("Figure 16/17/18", "BasicUnit vs DD vs fine-grained PL");
  const uint64_t n = Scaled(16ull << 20);
  const data::Workload w = MakeWorkload(n, n);

  TablePrinter table({"variant", "elapsed(s)", "PL gain"});
  for (coproc::Algorithm algo :
       {coproc::Algorithm::kSHJ, coproc::Algorithm::kPHJ}) {
    double bu_time = 0.0;
    coproc::JoinReport bu_report;
    for (coproc::Scheme scheme :
         {coproc::Scheme::kBasicUnit, coproc::Scheme::kDataDivide,
          coproc::Scheme::kPipelined}) {
      simcl::SimContext ctx = MakeContext();
      JoinSpec spec;
      spec.algorithm = algo;
      spec.scheme = scheme;
      const coproc::JoinReport rep = MustJoin(&ctx, w, spec);
      std::string gain = "-";
      if (scheme == coproc::Scheme::kBasicUnit) {
        bu_time = rep.elapsed_ns;
        bu_report = rep;
      } else if (scheme == coproc::Scheme::kPipelined) {
        gain = TablePrinter::FmtPercent(1.0 - rep.elapsed_ns / bu_time);
      }
      table.AddRow({std::string(AlgorithmName(algo)) + "-" +
                        (scheme == coproc::Scheme::kBasicUnit
                             ? "BasicUnit"
                             : SchemeName(scheme)),
                    Secs(rep.elapsed_ns), gain});
    }
    // Figures 17/18: BasicUnit's flat per-phase ratios.
    std::printf("\n%s BasicUnit effective CPU ratios per phase:\n",
                AlgorithmName(algo));
    std::string last_phase;
    for (const auto& s : bu_report.steps) {
      if (s.phase != last_phase) {
        std::printf("  %-14s CPU %s / GPU %s\n", s.phase.c_str(),
                    TablePrinter::FmtPercent(s.ratio, 0).c_str(),
                    TablePrinter::FmtPercent(1.0 - s.ratio, 0).c_str());
        last_phase = s.phase;
      }
    }
    std::printf("\n");
  }
  table.Print();
}

}  // namespace
}  // namespace apujoin::bench

int main(int argc, char** argv) {
  apujoin::bench::InitBench(argc, argv);
  apujoin::bench::Run();
}
