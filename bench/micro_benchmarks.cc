// google-benchmark micro suite: throughput sanity for the hot primitives
// (MurmurHash, software allocators, hash-table ops, radix pass kernels,
// cache simulator). These measure *host* wall-clock of the real code paths,
// complementing the virtual-time figure benches.

#include <benchmark/benchmark.h>

#include "alloc/basic_allocator.h"
#include "alloc/block_allocator.h"
#include "coproc/step_series.h"
#include "data/generator.h"
#include "join/hash_table.h"
#include "join/radix_partition.h"
#include "join/reference_join.h"
#include "simcl/cache_sim.h"
#include "util/murmur_hash.h"
#include "util/random.h"

namespace {

using namespace apujoin;  // NOLINT: bench-local convenience

void BM_MurmurHash2x4(benchmark::State& state) {
  uint32_t k = 12345;
  for (auto _ : state) {
    k = MurmurHash2x4(k);
    benchmark::DoNotOptimize(k);
  }
}
BENCHMARK(BM_MurmurHash2x4);

void BM_BasicAllocator(benchmark::State& state) {
  alloc::Arena arena(1ull << 24, 8);
  alloc::BasicAllocator allocator(&arena);
  uint32_t wg = 0;
  for (auto _ : state) {
    if (allocator.Allocate(1, simcl::DeviceId::kGpu, wg++ & 1023) < 0) {
      arena.Reset();
    }
  }
}
BENCHMARK(BM_BasicAllocator);

void BM_BlockAllocator(benchmark::State& state) {
  alloc::Arena arena(1ull << 24, 8);
  alloc::BlockAllocator allocator(&arena, 2048);
  uint32_t wg = 0;
  for (auto _ : state) {
    if (allocator.Allocate(1, simcl::DeviceId::kGpu, wg++ & 1023) < 0) {
      arena.Reset();
      allocator.Reset();
    }
  }
}
BENCHMARK(BM_BlockAllocator);

void BM_HashTableInsert(benchmark::State& state) {
  const uint32_t n = 1 << 16;
  auto pools = std::make_unique<join::NodePools>(
      n * 2, n * 2, alloc::AllocatorKind::kOptimized, 2048);
  auto table = std::make_unique<join::HashTable>(n, pools.get());
  int32_t key = 1;
  uint64_t inserted = 0;
  for (auto _ : state) {
    if (inserted >= n) {
      // Recreate the table when full (outside the timed region).
      state.PauseTiming();
      pools = std::make_unique<join::NodePools>(
          n * 2, n * 2, alloc::AllocatorKind::kOptimized, 2048);
      table = std::make_unique<join::HashTable>(n, pools.get());
      inserted = 0;
      key = 1;
      state.ResumeTiming();
    }
    uint32_t work = 0;
    const uint32_t bucket =
        table->BucketOf(MurmurHash2x4(static_cast<uint32_t>(key)));
    const int32_t node =
        table->FindOrAddKey(bucket, key, simcl::DeviceId::kCpu, 0, &work);
    benchmark::DoNotOptimize(
        table->InsertRid(node, key, simcl::DeviceId::kCpu, 0));
    key += 2;
    ++inserted;
  }
}
BENCHMARK(BM_HashTableInsert);

void BM_HashTableProbe(benchmark::State& state) {
  const uint32_t n = 1 << 14;
  join::NodePools pools(n * 2, n * 2, alloc::AllocatorKind::kOptimized, 2048);
  join::HashTable table(n, &pools);
  for (uint32_t k = 0; k < n; ++k) {
    uint32_t work = 0;
    const uint32_t bucket = table.BucketOf(MurmurHash2x4(2 * k + 1));
    const int32_t node = table.FindOrAddKey(
        static_cast<int32_t>(bucket), 2 * k + 1, simcl::DeviceId::kCpu, 0,
        &work);
    table.InsertRid(node, k, simcl::DeviceId::kCpu, 0);
  }
  uint32_t k = 0;
  for (auto _ : state) {
    uint32_t work = 0;
    const int32_t key = static_cast<int32_t>(2 * (k++ % n) + 1);
    const uint32_t bucket =
        table.BucketOf(MurmurHash2x4(static_cast<uint32_t>(key)));
    benchmark::DoNotOptimize(table.FindKey(bucket, key, &work));
  }
}
BENCHMARK(BM_HashTableProbe);

void BM_RadixPartitionPass(benchmark::State& state) {
  data::WorkloadSpec wspec;
  wspec.build_tuples = 1 << 16;
  wspec.probe_tuples = 1;
  auto w = data::GenerateWorkload(wspec);
  simcl::SimContext ctx;
  join::EngineOptions opts;
  opts.partitions = 64;
  const join::RadixPlan plan =
      join::RadixPlan::Make(1 << 16, 1 << 16, 4e6, opts);
  for (auto _ : state) {
    join::RadixPartitioner part(&ctx, &w->build, plan, opts);
    APU_CHECK_OK(part.Prepare());
    for (int pass = 0; pass < part.passes(); ++pass) {
      part.BeginPass(pass);
      auto steps = part.PassSteps(pass);
      for (auto& step : steps) {
        for (uint64_t i = 0; i < step.items; ++i) {
          step.fn(i, simcl::DeviceId::kCpu);
        }
      }
      part.EndPass(pass);
    }
    benchmark::DoNotOptimize(part.offsets().back());
  }
  state.SetItemsProcessed(state.iterations() * (1 << 16));
}
BENCHMARK(BM_RadixPartitionPass);

void BM_CacheSimAccess(benchmark::State& state) {
  simcl::CacheSim cache;
  Random rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Access(rng.Next() & ((16u << 20) - 1)));
  }
}
BENCHMARK(BM_CacheSimAccess);

void BM_ReferenceJoin(benchmark::State& state) {
  data::WorkloadSpec wspec;
  wspec.build_tuples = 1 << 14;
  wspec.probe_tuples = 1 << 16;
  auto w = data::GenerateWorkload(wspec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(join::ReferenceMatchCount(w->build, w->probe));
  }
  state.SetItemsProcessed(state.iterations() * (1 << 16));
}
BENCHMARK(BM_ReferenceJoin);

}  // namespace

BENCHMARK_MAIN();
