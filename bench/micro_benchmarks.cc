// google-benchmark micro suite: throughput sanity for the hot primitives
// (MurmurHash, software allocators, hash-table ops, radix pass kernels,
// cache simulator). These measure *host* wall-clock of the real code paths,
// complementing the virtual-time figure benches.

#include <benchmark/benchmark.h>

#include <functional>
#include <string>
#include <vector>

#include "alloc/basic_allocator.h"
#include "alloc/block_allocator.h"
#include "coproc/step_series.h"
#include "exec/thread_pool_backend.h"
#include "data/generator.h"
#include "data/key_schema.h"
#include "join/groupby_engine.h"
#include "join/hash_table.h"
#include "join/open_hash_table.h"
#include "join/radix_partition.h"
#include "join/reference_join.h"
#include "join/result_writer.h"
#include "simcl/cache_sim.h"
#include "util/cpu_features.h"
#include "util/murmur_hash.h"
#include "util/random.h"

namespace {

using namespace apujoin;  // NOLINT: bench-local convenience

void BM_MurmurHash2x4(benchmark::State& state) {
  uint32_t k = 12345;
  for (auto _ : state) {
    k = MurmurHash2x4(k);
    benchmark::DoNotOptimize(k);
  }
}
BENCHMARK(BM_MurmurHash2x4);

void BM_BasicAllocator(benchmark::State& state) {
  alloc::Arena arena(1ull << 24, 8);
  alloc::BasicAllocator allocator(&arena);
  uint32_t wg = 0;
  for (auto _ : state) {
    if (allocator.Allocate(1, simcl::DeviceId::kGpu, wg++ & 1023) < 0) {
      arena.Reset();
    }
  }
}
BENCHMARK(BM_BasicAllocator);

void BM_BlockAllocator(benchmark::State& state) {
  alloc::Arena arena(1ull << 24, 8);
  alloc::BlockAllocator allocator(&arena, 2048);
  uint32_t wg = 0;
  for (auto _ : state) {
    if (allocator.Allocate(1, simcl::DeviceId::kGpu, wg++ & 1023) < 0) {
      arena.Reset();
      allocator.Reset();
    }
  }
}
BENCHMARK(BM_BlockAllocator);

void BM_HashTableInsert(benchmark::State& state) {
  const uint32_t n = 1 << 16;
  auto pools = std::make_unique<join::NodePools>(
      n * 2, n * 2, alloc::AllocatorKind::kOptimized, 2048);
  auto table = std::make_unique<join::HashTable>(n, pools.get());
  int32_t key = 1;
  uint64_t inserted = 0;
  for (auto _ : state) {
    if (inserted >= n) {
      // Recreate the table when full (outside the timed region).
      state.PauseTiming();
      pools = std::make_unique<join::NodePools>(
          n * 2, n * 2, alloc::AllocatorKind::kOptimized, 2048);
      table = std::make_unique<join::HashTable>(n, pools.get());
      inserted = 0;
      key = 1;
      state.ResumeTiming();
    }
    uint32_t work = 0;
    const uint32_t bucket =
        table->BucketOf(MurmurHash2x4(static_cast<uint32_t>(key)));
    const int32_t node =
        table->FindOrAddKey(bucket, key, simcl::DeviceId::kCpu, 0, &work);
    benchmark::DoNotOptimize(
        table->InsertRid(node, key, simcl::DeviceId::kCpu, 0));
    key += 2;
    ++inserted;
  }
}
BENCHMARK(BM_HashTableInsert);

void BM_HashTableProbe(benchmark::State& state) {
  const uint32_t n = 1 << 14;
  join::NodePools pools(n * 2, n * 2, alloc::AllocatorKind::kOptimized, 2048);
  join::HashTable table(n, &pools);
  for (uint32_t k = 0; k < n; ++k) {
    uint32_t work = 0;
    const uint32_t bucket = table.BucketOf(MurmurHash2x4(2 * k + 1));
    const int32_t node = table.FindOrAddKey(
        static_cast<int32_t>(bucket), 2 * k + 1, simcl::DeviceId::kCpu, 0,
        &work);
    table.InsertRid(node, k, simcl::DeviceId::kCpu, 0);
  }
  uint32_t k = 0;
  for (auto _ : state) {
    uint32_t work = 0;
    const int32_t key = static_cast<int32_t>(2 * (k++ % n) + 1);
    const uint32_t bucket =
        table.BucketOf(MurmurHash2x4(static_cast<uint32_t>(key)));
    benchmark::DoNotOptimize(table.FindKey(bucket, key, &work));
  }
}
BENCHMARK(BM_HashTableProbe);

// --------------------------------------------------------------------------
// Probe-layout comparison: the same out-of-cache probe workload against the
// chained table and the open-addressing table (scalar and AVX2 paths). All
// three run batch-style with hashes/buckets precomputed — the p2/p3 split
// of the real kernels — so the numbers isolate the key-search itself.
// --------------------------------------------------------------------------

constexpr uint32_t kLayoutBuildKeys = 1 << 20;
constexpr uint32_t kLayoutProbeBatch = 1 << 16;

struct ProbeBatch {
  std::vector<int32_t> keys;
  std::vector<uint32_t> hash;
};

ProbeBatch MakeProbeBatch(uint32_t batch = kLayoutProbeBatch) {
  ProbeBatch b;
  b.keys.resize(batch);
  b.hash.resize(batch);
  Random rng(7);
  for (uint32_t i = 0; i < batch; ++i) {
    // Build keys are the odd numbers below 2n; every second probe misses.
    b.keys[i] = static_cast<int32_t>(rng.Next() % (2 * kLayoutBuildKeys));
    b.hash[i] = MurmurHash2x4(static_cast<uint32_t>(b.keys[i]));
  }
  return b;
}

void BM_ProbeChained(benchmark::State& state) {
  const uint32_t n = kLayoutBuildKeys;
  join::NodePools pools(n + n / 4, n + n / 4,
                        alloc::AllocatorKind::kOptimized, 2048);
  join::HashTable table(join::NextPow2(n), &pools);
  for (uint32_t k = 0; k < n; ++k) {
    uint32_t work = 0;
    const int32_t key = static_cast<int32_t>(2 * k + 1);
    const uint32_t b = table.BucketOf(MurmurHash2x4(2 * k + 1));
    const int32_t node =
        table.FindOrAddKey(b, key, simcl::DeviceId::kCpu, 0, &work);
    table.InsertRid(node, static_cast<int32_t>(k), simcl::DeviceId::kCpu, 0);
  }
  const ProbeBatch batch = MakeProbeBatch();
  for (auto _ : state) {
    uint64_t found = 0;
    for (uint32_t i = 0; i < kLayoutProbeBatch; ++i) {
      uint32_t work = 0;
      found += table.FindKey(table.BucketOf(batch.hash[i]), batch.keys[i],
                             &work) != join::kNil;
    }
    benchmark::DoNotOptimize(found);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kLayoutProbeBatch));
}
BENCHMARK(BM_ProbeChained);

void ProbeOpenAddressing(benchmark::State& state, bool use_avx2,
                         uint32_t prefetch_dist) {
  const uint32_t n = kLayoutBuildKeys;
  join::NodePools pools(64, n + n / 4, alloc::AllocatorKind::kOptimized,
                        2048);
  join::OpenHashTable table(join::OpenBucketsFor(n), &pools);
  for (uint32_t k = 0; k < n; ++k) {
    uint32_t work = 0;
    const int32_t key = static_cast<int32_t>(2 * k + 1);
    const int32_t slot =
        table.FindOrAddKey(table.BucketOf(MurmurHash2x4(2 * k + 1)), key,
                           &work);
    table.InsertRid(slot, static_cast<int32_t>(k), simcl::DeviceId::kCpu, 0);
  }
  const ProbeBatch batch = MakeProbeBatch();
  std::vector<uint32_t> buckets(kLayoutProbeBatch);
  for (uint32_t i = 0; i < kLayoutProbeBatch; ++i) {
    buckets[i] = table.BucketOf(batch.hash[i]);
  }
  for (auto _ : state) {
    uint64_t found = 0;
    for (uint32_t i = 0; i < kLayoutProbeBatch; ++i) {
      if (prefetch_dist != 0 && i + prefetch_dist < kLayoutProbeBatch) {
        table.PrefetchBucket(buckets[i + prefetch_dist]);
      }
      uint32_t work = 0;
      found += table.FindKey(buckets[i], batch.keys[i], &work, use_avx2) !=
               join::kNil;
    }
    benchmark::DoNotOptimize(found);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kLayoutProbeBatch));
}

void BM_ProbeOpenAddressingScalar(benchmark::State& state) {
  ProbeOpenAddressing(state, /*use_avx2=*/false, /*prefetch_dist=*/16);
}
BENCHMARK(BM_ProbeOpenAddressingScalar);

void BM_ProbeOpenAddressingAvx2(benchmark::State& state) {
  // Silently measures the scalar path on hosts without AVX2 (the same
  // degradation the kAuto dispatch applies).
  ProbeOpenAddressing(state, /*use_avx2=*/CpuSupportsAvx2(),
                      /*prefetch_dist=*/16);
}
BENCHMARK(BM_ProbeOpenAddressingAvx2);

void BM_ProbeOpenAddressingNoPrefetch(benchmark::State& state) {
  ProbeOpenAddressing(state, /*use_avx2=*/CpuSupportsAvx2(),
                      /*prefetch_dist=*/0);
}
BENCHMARK(BM_ProbeOpenAddressingNoPrefetch);

// Wide (two-word) probe variants — the canonical U64/composite/dict-string
// path. Build lo words repeat every 64K keys so the hi-word compare carries
// the match; every second probe misses, as in the narrow batches. The open
// layout takes the scalar wide probe (the 8-lane AVX2 bucket compare is a
// narrow-key specialization), so these also quantify what kAvx2 gives up
// when the schema widens.

struct WideProbeBatch {
  std::vector<int32_t> lo, hi;
  std::vector<uint32_t> hash;
};

WideProbeBatch MakeWideProbeBatch(uint32_t batch = kLayoutProbeBatch) {
  WideProbeBatch b;
  b.lo.resize(batch);
  b.hi.resize(batch);
  b.hash.resize(batch);
  Random rng(7);
  for (uint32_t i = 0; i < batch; ++i) {
    const uint32_t v = rng.Next() % (2 * kLayoutBuildKeys);
    b.lo[i] = static_cast<int32_t>(v & 0xffff);
    b.hi[i] = static_cast<int32_t>(v);
    b.hash[i] = MurmurHash2x8(data::PackKeyPair(b.lo[i], b.hi[i]));
  }
  return b;
}

void BM_ProbeChainedWide(benchmark::State& state) {
  const uint32_t n = kLayoutBuildKeys;
  join::NodePools pools(n + n / 4, n + n / 4,
                        alloc::AllocatorKind::kOptimized, 2048,
                        /*wide_keys=*/true);
  join::HashTable table(join::NextPow2(n), &pools);
  for (uint32_t k = 0; k < n; ++k) {
    uint32_t work = 0;
    const int32_t lo = static_cast<int32_t>(k & 0xffff);
    const int32_t hi = static_cast<int32_t>(k);
    const uint32_t b =
        table.BucketOf(MurmurHash2x8(data::PackKeyPair(lo, hi)));
    const int32_t node =
        table.FindOrAddKeyWide(b, lo, hi, simcl::DeviceId::kCpu, 0, &work);
    table.InsertRid(node, static_cast<int32_t>(k), simcl::DeviceId::kCpu, 0);
  }
  const WideProbeBatch batch = MakeWideProbeBatch();
  for (auto _ : state) {
    uint64_t found = 0;
    for (uint32_t i = 0; i < kLayoutProbeBatch; ++i) {
      uint32_t work = 0;
      found += table.FindKeyWide(table.BucketOf(batch.hash[i]), batch.lo[i],
                                 batch.hi[i], &work) != join::kNil;
    }
    benchmark::DoNotOptimize(found);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kLayoutProbeBatch));
}
BENCHMARK(BM_ProbeChainedWide);

void BM_ProbeOpenAddressingWide(benchmark::State& state) {
  const uint32_t n = kLayoutBuildKeys;
  join::NodePools pools(64, n + n / 4, alloc::AllocatorKind::kOptimized,
                        2048);
  join::OpenHashTable table(join::OpenBucketsFor(n), &pools,
                            /*wide_keys=*/true);
  for (uint32_t k = 0; k < n; ++k) {
    uint32_t work = 0;
    const int32_t lo = static_cast<int32_t>(k & 0xffff);
    const int32_t hi = static_cast<int32_t>(k);
    const int32_t slot = table.FindOrAddKeyWide(
        table.BucketOf(MurmurHash2x8(data::PackKeyPair(lo, hi))), lo, hi,
        &work);
    table.InsertRid(slot, static_cast<int32_t>(k), simcl::DeviceId::kCpu, 0);
  }
  const WideProbeBatch batch = MakeWideProbeBatch();
  std::vector<uint32_t> buckets(kLayoutProbeBatch);
  for (uint32_t i = 0; i < kLayoutProbeBatch; ++i) {
    buckets[i] = table.BucketOf(batch.hash[i]);
  }
  for (auto _ : state) {
    uint64_t found = 0;
    for (uint32_t i = 0; i < kLayoutProbeBatch; ++i) {
      if (i + 16 < kLayoutProbeBatch) table.PrefetchBucket(buckets[i + 16]);
      uint32_t work = 0;
      found += table.FindKeyWide(buckets[i], batch.lo[i], batch.hi[i],
                                 &work) != join::kNil;
    }
    benchmark::DoNotOptimize(found);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kLayoutProbeBatch));
}
BENCHMARK(BM_ProbeOpenAddressingWide);

// --------------------------------------------------------------------------
// Fusion payoff: the same probe workload either streams every match into
// the group-by accumulator (the fused p4g shape) or materializes the
// <key, build rid, probe rid> tuples through the result writer and
// aggregates them in a second g1-style rescan (the unfused p4 + g1 shape).
// The delta is the writer traffic (atomic slot claims, three column
// stores, the rescan reload) the plan-fusion pass eliminates; the batch is
// sized so the pair buffer does not fit in cache (the regime of the
// figure-scale workloads).
// --------------------------------------------------------------------------

constexpr uint32_t kFuseProbeBatch = 1 << 21;

/// Fills a chained table with the odd keys below 2n, one rid per key (the
/// BM_ProbeChained build, shared by the fusion pair).
void FillFusionBuild(join::HashTable* table) {
  for (uint32_t k = 0; k < kLayoutBuildKeys; ++k) {
    uint32_t work = 0;
    const int32_t key = static_cast<int32_t>(2 * k + 1);
    const uint32_t b = table->BucketOf(MurmurHash2x4(2 * k + 1));
    const int32_t node =
        table->FindOrAddKey(b, key, simcl::DeviceId::kCpu, 0, &work);
    table->InsertRid(node, static_cast<int32_t>(k), simcl::DeviceId::kCpu, 0);
  }
}

void BM_ProbeAggregateFused(benchmark::State& state) {
  const uint32_t n = kLayoutBuildKeys;
  join::NodePools pools(n + n / 4, n + n / 4,
                        alloc::AllocatorKind::kOptimized, 2048);
  join::HashTable table(join::NextPow2(n), &pools);
  FillFusionBuild(&table);
  const ProbeBatch batch = MakeProbeBatch(kFuseProbeBatch);
  join::GroupByEngine agg(plan::AggFn::kSum);
  APU_CHECK_OK(agg.PrepareFused(n));
  for (auto _ : state) {
    uint64_t work = 0;
    for (uint32_t i = 0; i < kFuseProbeBatch; ++i) {
      uint32_t w = 0;
      const int32_t node =
          table.FindKey(table.BucketOf(batch.hash[i]), batch.keys[i], &w);
      if (node == join::kNil) continue;
      const int32_t key = batch.keys[i];
      work += table.ForEachRid(node, [&agg, key, i](int32_t) {
        agg.Accumulate(key, static_cast<int64_t>(i));
      });
    }
    benchmark::DoNotOptimize(work);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kFuseProbeBatch));
}
BENCHMARK(BM_ProbeAggregateFused);

void BM_ProbeMaterializeThenAggregate(benchmark::State& state) {
  const uint32_t n = kLayoutBuildKeys;
  join::NodePools pools(n + n / 4, n + n / 4,
                        alloc::AllocatorKind::kOptimized, 2048);
  join::HashTable table(join::NextPow2(n), &pools);
  FillFusionBuild(&table);
  const ProbeBatch batch = MakeProbeBatch(kFuseProbeBatch);
  join::GroupByEngine agg(plan::AggFn::kSum);
  APU_CHECK_OK(agg.PrepareFused(n));
  // Every build key holds one rid, so the batch bounds the pair count.
  join::ResultWriter writer(kFuseProbeBatch, alloc::AllocatorKind::kOptimized,
                            2048);
  writer.CaptureKeys();
  for (auto _ : state) {
    writer.Reset();
    // p4: probe and materialize the result tuples through the writer.
    for (uint32_t i = 0; i < kFuseProbeBatch; ++i) {
      uint32_t w = 0;
      const int32_t node =
          table.FindKey(table.BucketOf(batch.hash[i]), batch.keys[i], &w);
      if (node == join::kNil) continue;
      const int32_t key = batch.keys[i];
      table.ForEachRid(node, [&writer, key, i](int32_t brid) {
        writer.Emit(key, brid, static_cast<int32_t>(i), simcl::DeviceId::kCpu,
                    0);
      });
    }
    // g1: rescan the writer's slots and fold them into the aggregate table.
    uint64_t work = 0;
    const uint64_t slots = writer.used_slots();
    const int32_t* keys = writer.key_data();
    const int32_t* brids = writer.build_rid_data();
    const int32_t* prids = writer.probe_rid_data();
    for (uint64_t j = 0; j < slots; ++j) {
      if (brids[j] < 0) continue;  // unclaimed block remainder
      work += agg.Accumulate(keys[j], prids[j]);
    }
    benchmark::DoNotOptimize(work);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kFuseProbeBatch));
}
BENCHMARK(BM_ProbeMaterializeThenAggregate);

void BM_RadixPartitionPass(benchmark::State& state) {
  data::WorkloadSpec wspec;
  wspec.build_tuples = 1 << 16;
  wspec.probe_tuples = 1;
  auto w = data::GenerateWorkload(wspec);
  simcl::SimContext ctx;
  join::EngineOptions opts;
  opts.partitions = 64;
  const join::RadixPlan plan =
      join::RadixPlan::Make(1 << 16, 1 << 16, 4e6, opts);
  for (auto _ : state) {
    join::RadixPartitioner part(&ctx, &w->build, plan, opts);
    APU_CHECK_OK(part.Prepare());
    for (int pass = 0; pass < part.passes(); ++pass) {
      part.BeginPass(pass);
      auto steps = part.PassSteps(pass);
      for (auto& step : steps) {
        step.run(join::Morsel{0, step.items}, simcl::DeviceId::kCpu,
                 nullptr);
      }
      part.EndPass(pass);
    }
    benchmark::DoNotOptimize(part.offsets().back());
  }
  state.SetItemsProcessed(state.iterations() * (1 << 16));
}
BENCHMARK(BM_RadixPartitionPass);

// --------------------------------------------------------------------------
// Kernel-dispatch overhead: the refactor's reason-to-exist. Both cases run
// the same p1-style hash loop (MurmurHash over a key column into a hash
// column); the first dispatches every item through a type-erased
// std::function closure — the historical ItemKernel ABI — while the second
// makes one std::function call per 256-item morsel and loops tight inside.
// Compare the ns/item (items_per_second counter) of the two.
// --------------------------------------------------------------------------

constexpr uint64_t kDispatchItems = 1 << 16;

void BM_DispatchPerItemClosure(benchmark::State& state) {
  std::vector<int32_t> keys(kDispatchItems);
  std::vector<uint32_t> hash(kDispatchItems);
  for (uint64_t i = 0; i < kDispatchItems; ++i) {
    keys[i] = static_cast<int32_t>(i * 2654435761u);
  }
  // The pre-morsel ABI: one virtual call + closure frame per item.
  std::function<uint32_t(uint64_t, simcl::DeviceId)> fn =
      [&keys, &hash](uint64_t i, simcl::DeviceId) -> uint32_t {
    hash[i] = MurmurHash2x4(static_cast<uint32_t>(keys[i]));
    return 1;
  };
  for (auto _ : state) {
    uint64_t work = 0;
    for (uint64_t i = 0; i < kDispatchItems; ++i) {
      work += fn(i, simcl::DeviceId::kCpu);
    }
    benchmark::DoNotOptimize(work);
    benchmark::DoNotOptimize(hash.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kDispatchItems));
}
BENCHMARK(BM_DispatchPerItemClosure);

void BM_DispatchMorselKernel(benchmark::State& state) {
  std::vector<int32_t> keys(kDispatchItems);
  std::vector<uint32_t> hash(kDispatchItems);
  for (uint64_t i = 0; i < kDispatchItems; ++i) {
    keys[i] = static_cast<int32_t>(i * 2654435761u);
  }
  // The morsel ABI: column views captured once, one dispatch per morsel.
  join::MorselKernel kernel =
      [k = keys.data(), h = hash.data()](const join::Morsel& m,
                                         simcl::DeviceId,
                                         uint32_t* lw) -> uint64_t {
    for (uint64_t i = m.begin; i < m.end; ++i) {
      h[i] = MurmurHash2x4(static_cast<uint32_t>(k[i]));
    }
    return join::ConstantWork(lw, m);
  };
  const uint64_t morsel = exec::kDefaultMorselItems;
  for (auto _ : state) {
    uint64_t work = 0;
    for (uint64_t base = 0; base < kDispatchItems; base += morsel) {
      work += kernel(
          join::Morsel{base, std::min(kDispatchItems, base + morsel)},
          simcl::DeviceId::kCpu, nullptr);
    }
    benchmark::DoNotOptimize(work);
    benchmark::DoNotOptimize(hash.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kDispatchItems));
}
BENCHMARK(BM_DispatchMorselKernel);

void BM_CacheSimAccess(benchmark::State& state) {
  simcl::CacheSim cache;
  Random rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Access(rng.Next() & ((16u << 20) - 1)));
  }
}
BENCHMARK(BM_CacheSimAccess);

void BM_ReferenceJoin(benchmark::State& state) {
  data::WorkloadSpec wspec;
  wspec.build_tuples = 1 << 14;
  wspec.probe_tuples = 1 << 16;
  auto w = data::GenerateWorkload(wspec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(join::ReferenceMatchCount(w->build, w->probe));
  }
  state.SetItemsProcessed(state.iterations() * (1 << 16));
}
BENCHMARK(BM_ReferenceJoin);

}  // namespace

// Accepts the repo-wide --json=<path> flag by translating it into
// google-benchmark's JSON reporter pair, so CI collects BENCH_*.json
// artifacts from this binary exactly like from the figure benches.
int main(int argc, char** argv) {
  std::vector<std::string> args(argv, argv + argc);
  std::vector<std::string> translated;
  translated.reserve(args.size() + 1);
  for (const std::string& a : args) {
    if (a.rfind("--json=", 0) == 0) {
      translated.push_back("--benchmark_out=" + a.substr(7));
      translated.push_back("--benchmark_out_format=json");
    } else {
      translated.push_back(a);
    }
  }
  std::vector<char*> cargs;
  cargs.reserve(translated.size());
  for (std::string& a : translated) cargs.push_back(a.data());
  int cargc = static_cast<int>(cargs.size());
  benchmark::Initialize(&cargc, cargs.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
