// Section 5.4 "Workload divergence": the grouping-based divergence
// reduction, evaluated on skewed probes.
//
// Shape targets: grouping improves the overall join by ~5-10%, with a
// larger effect on GPU-heavy schedules (lock-step wavefronts have no
// branch prediction to hide divergence behind).

#include "bench_common.h"

namespace apujoin::bench {
namespace {

using coproc::JoinSpec;

void Run() {
  PrintBanner("Section 5.4", "grouping-based workload-divergence reduction");
  const uint64_t n = Scaled(16ull << 20);

  TablePrinter table({"distribution", "scheme", "no grouping(s)",
                      "grouping(s)", "gain", "p4 divergence w/o", "with"});
  for (data::Distribution dist :
       {data::Distribution::kLowSkew, data::Distribution::kHighSkew}) {
    const data::Workload w = MakeWorkload(n, n, dist);
    for (coproc::Scheme scheme :
         {coproc::Scheme::kGpuOnly, coproc::Scheme::kPipelined}) {
      double times[2];
      double divergence[2] = {1.0, 1.0};
      for (int g = 0; g < 2; ++g) {
        simcl::SimContext ctx = MakeContext();
        JoinSpec spec;
        spec.algorithm = coproc::Algorithm::kSHJ;
        spec.scheme = scheme;
        spec.engine.grouping = g == 1;
        const coproc::JoinReport rep = MustJoin(&ctx, w, spec);
        times[g] = rep.elapsed_ns;
        for (const auto& s : rep.steps) {
          if (s.name == "p4") divergence[g] = s.gpu_divergence;
        }
      }
      table.AddRow({DistributionName(dist), SchemeName(scheme),
                    Secs(times[0]), Secs(times[1]),
                    TablePrinter::FmtPercent(1.0 - times[1] / times[0]),
                    TablePrinter::Fmt(divergence[0], 2),
                    TablePrinter::Fmt(divergence[1], 2)});
    }
  }
  table.Print();
}

}  // namespace
}  // namespace apujoin::bench

int main(int argc, char** argv) {
  apujoin::bench::InitBench(argc, argv);
  apujoin::bench::Run();
}
