// Figure 5: optimal per-step workload ratios of SHJ-PL on the coupled
// architecture (build b1..b4 and probe p1..p4).
//
// Shape targets: ratios vary widely across steps; the hash steps (b1/p1)
// lean almost entirely GPU; the key-list steps (b3/p3) carry a large CPU
// share; consecutive unlike ratios imply intermediate results (the grey
// areas of the paper's figure), printed as "crossing%".

#include "bench_common.h"

namespace apujoin::bench {
namespace {

void Run() {
  PrintBanner("Figure 5", "optimal per-step ratios, SHJ-PL (coupled)");
  const uint64_t n = Scaled(16ull << 20);
  const data::Workload w = MakeWorkload(n, n);
  simcl::SimContext ctx = MakeContext();
  coproc::JoinSpec spec;
  spec.algorithm = coproc::Algorithm::kSHJ;
  spec.scheme = coproc::Scheme::kPipelined;
  const coproc::JoinReport rep = MustJoin(&ctx, w, spec);

  TablePrinter table({"phase", "step", "CPU%", "GPU%", "crossing%"});
  double prev = -1.0;
  std::string prev_phase;
  for (const auto& s : rep.steps) {
    const double crossing =
        (prev < 0.0 || s.phase != prev_phase) ? 0.0 : std::abs(s.ratio - prev);
    table.AddRow({s.phase, s.name, TablePrinter::FmtPercent(s.ratio, 0),
                  TablePrinter::FmtPercent(1.0 - s.ratio, 0),
                  TablePrinter::FmtPercent(crossing, 0)});
    prev = s.ratio;
    prev_phase = s.phase;
  }
  table.Print();
  std::printf("\ntotal elapsed: %s s (matches=%llu)\n",
              Secs(rep.elapsed_ns).c_str(),
              static_cast<unsigned long long>(rep.matches));
}

}  // namespace
}  // namespace apujoin::bench

int main(int argc, char** argv) {
  apujoin::bench::InitBench(argc, argv);
  apujoin::bench::Run();
}
