// Figure 11: elapsed time (left) and lock overhead (right) of PHJ-DD /
// PHJ-OL / PHJ-PL as the optimized allocator's block size sweeps 8 B..32 KB.
//
// Shape targets: performance improves with larger blocks and flattens
// around 2 KB (the paper's chosen default); lock overhead — estimated, as
// in the paper, by measured-minus-modelled time — falls monotonically with
// the block size.

#include "bench_common.h"

namespace apujoin::bench {
namespace {

using coproc::JoinSpec;

void Run() {
  PrintBanner("Figure 11", "allocation block size sweep (PHJ)");
  const uint64_t n = Scaled(16ull << 20);
  const data::Workload w = MakeWorkload(n, n);

  TablePrinter table({"block", "scheme", "elapsed(s)", "lock overhead(s)"});
  for (uint32_t block : {8u, 32u, 128u, 512u, 2048u, 8192u, 32768u}) {
    for (coproc::Scheme scheme :
         {coproc::Scheme::kDataDivide, coproc::Scheme::kOffload,
          coproc::Scheme::kPipelined}) {
      simcl::SimContext ctx = MakeContext();
      JoinSpec spec;
      spec.algorithm = coproc::Algorithm::kPHJ;
      spec.scheme = scheme;
      spec.engine.block_bytes = block;
      const coproc::JoinReport rep = MustJoin(&ctx, w, spec);
      table.AddRow({TablePrinter::FmtCount(block) + "B",
                    std::string("PHJ-") + SchemeName(scheme),
                    Secs(rep.elapsed_ns), Secs(rep.lock_ns)});
    }
  }
  table.Print();
}

}  // namespace
}  // namespace apujoin::bench

int main(int argc, char** argv) {
  apujoin::bench::InitBench(argc, argv);
  apujoin::bench::Run();
}
