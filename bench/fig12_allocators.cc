// Figure 12: basic vs optimized software memory allocator for all hash join
// variants (SHJ/PHJ x DD/OL/PL).
//
// Shape targets: the optimized (block) allocator wins everywhere — up to
// 36% on SHJ and 39% on PHJ in the paper — by eliminating per-request
// global atomics.

#include "bench_common.h"

namespace apujoin::bench {
namespace {

using coproc::JoinSpec;

void Run() {
  PrintBanner("Figure 12", "basic vs optimized memory allocator");
  const uint64_t n = Scaled(16ull << 20);
  const data::Workload w = MakeWorkload(n, n);

  TablePrinter table({"variant", "Basic(s)", "Ours(s)", "improvement"});
  for (coproc::Algorithm algo :
       {coproc::Algorithm::kSHJ, coproc::Algorithm::kPHJ}) {
    for (coproc::Scheme scheme :
         {coproc::Scheme::kDataDivide, coproc::Scheme::kOffload,
          coproc::Scheme::kPipelined}) {
      double times[2] = {0.0, 0.0};
      for (int k = 0; k < 2; ++k) {
        simcl::SimContext ctx = MakeContext();
        JoinSpec spec;
        spec.algorithm = algo;
        spec.scheme = scheme;
        spec.engine.allocator = k == 0 ? alloc::AllocatorKind::kBasic
                                       : alloc::AllocatorKind::kOptimized;
        times[k] = MustJoin(&ctx, w, spec).elapsed_ns;
      }
      table.AddRow({std::string(AlgorithmName(algo)) + "-" +
                        SchemeName(scheme),
                    Secs(times[0]), Secs(times[1]),
                    TablePrinter::FmtPercent(1.0 - times[1] / times[0])});
    }
  }
  table.Print();
}

}  // namespace
}  // namespace apujoin::bench

int main(int argc, char** argv) {
  apujoin::bench::InitBench(argc, argv);
  apujoin::bench::Run();
}
