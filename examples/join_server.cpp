// Join server: N client threads driving one JoinService — the serving
// topology the repo is growing toward, in one runnable example.
//
// Four clients share a thread-pool substrate through fair-share session
// leases: one analytics client streams PHJ joins over a bigger relation
// pair while three OLTP-ish clients hammer small SHJ joins with different
// skew, each session tuning its own ratios online and publishing measured
// unit costs into the service-wide cost table. The example also shows the
// two admission-control surfaces returning real errors: opening a fifth
// session beyond max_sessions, and a submission burst overflowing the
// bounded request queue.
//
// Flags: --backend=sim|threads (default threads), --threads=N pool size,
// --tune=off|once|online (default online).

#include <cstdio>
#include <thread>
#include <vector>

#include "example_common.h"
#include "service/join_service.h"
#include "util/table_printer.h"

namespace {

using namespace apujoin;

constexpr int kClients = 4;
constexpr int kJoinsPerClient = 8;

data::Workload MakeWorkload(uint64_t build, uint64_t probe,
                            data::Distribution dist, uint64_t seed) {
  data::WorkloadSpec spec;
  spec.build_tuples = build;
  spec.probe_tuples = probe;
  spec.distribution = dist;
  spec.seed = seed;
  auto w = data::GenerateWorkload(spec);
  APU_CHECK_OK(w.status());
  return std::move(w).value();
}

struct ClientResult {
  uint64_t joins = 0;
  uint64_t matches = 0;
  double total_s = 0.0;
  double first_s = 0.0;
  double last_s = 0.0;
};

void RunClient(service::Session* session, const data::Workload& w,
               ClientResult* out) {
  using Clock = std::chrono::steady_clock;
  for (int i = 0; i < kJoinsPerClient; ++i) {
    const auto t0 = Clock::now();
    auto report = session->Join(w);
    APU_CHECK_OK(report.status());
    APU_CHECK(report->matches == w.expected_matches);
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    out->total_s += s;
    if (i == 0) out->first_s = s;
    out->last_s = s;
    ++out->joins;
    out->matches += report->matches;
  }
}

}  // namespace

int main(int argc, char** argv) {
  join::EngineOptions engine;
  engine.backend = exec::BackendKind::kThreadPool;
  engine.tune = cost::TuneMode::kOnline;
  examples::ApplyBackendFlags(argc, argv, &engine);

  service::ServiceOptions sopts;
  sopts.exec.backend = engine.backend;
  sopts.exec.threads = engine.threads;
  sopts.exec.morsel_items = engine.morsel_items;
  sopts.max_sessions = kClients;
  sopts.queue_capacity = 8;
  service::JoinService svc(sopts);

  std::printf("join server: backend=%s, %d worker slots, max %d sessions, "
              "queue %d, tune=%s\n\n",
              exec::BackendKindName(sopts.exec.backend), svc.capacity(),
              sopts.max_sessions, sopts.queue_capacity,
              cost::TuneModeName(engine.tune));

  // One analytics session (PHJ, bigger relations, quota 2) + three OLTP
  // sessions (small SHJ, different skew, quota 1 each).
  std::vector<data::Workload> workloads;
  workloads.push_back(MakeWorkload(1 << 16, 1 << 17,
                                   data::Distribution::kUniform, 1));
  workloads.push_back(MakeWorkload(1 << 13, 1 << 15,
                                   data::Distribution::kUniform, 2));
  workloads.push_back(MakeWorkload(1 << 13, 1 << 15,
                                   data::Distribution::kLowSkew, 3));
  workloads.push_back(MakeWorkload(1 << 13, 1 << 15,
                                   data::Distribution::kHighSkew, 4));

  std::vector<std::unique_ptr<service::Session>> sessions;
  for (int c = 0; c < kClients; ++c) {
    service::SessionOptions o;
    o.spec.algorithm = c == 0 ? coproc::Algorithm::kPHJ
                              : coproc::Algorithm::kSHJ;
    o.spec.scheme = coproc::Scheme::kPipelined;
    o.spec.engine = engine;
    o.slots = c == 0 ? 2 : 1;
    auto session = svc.OpenSession(std::move(o));
    APU_CHECK_OK(session.status());
    sessions.push_back(std::move(*session));
  }

  // Admission control is a real error, not a hang.
  auto rejected = svc.OpenSession(service::SessionOptions());
  APU_CHECK(!rejected.ok());
  std::printf("5th session rejected: %s\n\n",
              rejected.status().ToString().c_str());

  std::vector<ClientResult> results(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      RunClient(sessions[static_cast<size_t>(c)].get(),
                workloads[static_cast<size_t>(c)],
                &results[static_cast<size_t>(c)]);
    });
  }
  for (std::thread& t : clients) t.join();

  TablePrinter table({"client", "algo", "quota", "joins", "mean(ms)",
                      "first(ms)", "last(ms)", "peak workers"});
  for (int c = 0; c < kClients; ++c) {
    const ClientResult& r = results[static_cast<size_t>(c)];
    const service::Session& s = *sessions[static_cast<size_t>(c)];
    const exec::LeaseStats* ls = s.lease_stats();
    table.AddRow({"c" + std::to_string(c), c == 0 ? "PHJ" : "SHJ",
                  std::to_string(s.slots()), std::to_string(r.joins),
                  TablePrinter::Fmt(r.total_s / static_cast<double>(r.joins) *
                                        1e3, 1),
                  TablePrinter::Fmt(r.first_s * 1e3, 1),
                  TablePrinter::Fmt(r.last_s * 1e3, 1),
                  ls != nullptr ? std::to_string(ls->peak_workers) : "-"});
  }
  table.Print();

  // Overflow the bounded queue on purpose: a burst of async submissions
  // beyond queue_capacity is refused, not buffered forever.
  std::vector<service::JoinTicket> burst;
  apujoin::Status overflow = apujoin::Status::OK();
  for (int i = 0; i < sopts.queue_capacity + 4; ++i) {
    auto t = sessions[1]->Submit(workloads[1]);
    if (t.ok()) {
      burst.push_back(*t);
    } else {
      overflow = t.status();
      break;
    }
  }
  APU_CHECK(!overflow.ok());
  std::printf("\nburst of %d submissions: %zu accepted, then: %s\n",
              sopts.queue_capacity + 4, burst.size(),
              overflow.ToString().c_str());
  for (service::JoinTicket& t : burst) APU_CHECK_OK(t.Take().status());

  const service::ServiceStats stats = svc.stats();
  std::printf("\nservice: %llu joins completed, %llu failed, %llu "
              "submissions rejected, %llu sessions rejected\n",
              static_cast<unsigned long long>(stats.joins_completed),
              static_cast<unsigned long long>(stats.joins_failed),
              static_cast<unsigned long long>(stats.submissions_rejected),
              static_cast<unsigned long long>(stats.sessions_rejected));
  std::printf("service-wide cost table: %zu step kinds measured across "
              "sessions\n",
              svc.shared_cost_steps());
  sessions.clear();  // close sessions before the service
  return 0;
}
