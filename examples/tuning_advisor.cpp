// Tuning advisor: uses the cost model to *plan* a join before running it —
// which algorithm, which scheme, which per-step ratios — then validates the
// recommendation by executing. This is the workflow the paper's Section 4
// enables: the model turns the co-processing design space into an
// automatically tunable knob set.

#include <cstdio>
#include <cstdlib>

#include "core/coupled_joiner.h"
#include "example_common.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace apujoin;

  join::EngineOptions engine;
  examples::ApplyBackendFlags(argc, argv, &engine);
  // Positional sizes (flags are consumed above): tuning_advisor [R] [S].
  uint64_t sizes[2] = {1ull << 20, 4ull << 20};
  int pos = 0;
  for (int i = 1; i < argc && pos < 2; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      sizes[pos++] = std::strtoull(argv[i], nullptr, 10);
    }
  }
  const uint64_t build = sizes[0];
  const uint64_t probe = sizes[1];
  std::printf("planning |R|=%llu ⋈ |S|=%llu ...\n\n",
              static_cast<unsigned long long>(build),
              static_cast<unsigned long long>(probe));

  data::WorkloadSpec wspec;
  wspec.build_tuples = build;
  wspec.probe_tuples = probe;
  auto workload = data::GenerateWorkload(wspec);
  APU_CHECK_OK(workload.status());

  // Trial-run each candidate plan; the cost-model estimate orders them,
  // the measurement validates the pick.
  struct Candidate {
    coproc::Algorithm algo;
    coproc::Scheme scheme;
    double estimated = 0.0;
    double measured = 0.0;
  };
  std::vector<Candidate> candidates;
  for (coproc::Algorithm algo :
       {coproc::Algorithm::kSHJ, coproc::Algorithm::kPHJ}) {
    for (coproc::Scheme scheme :
         {coproc::Scheme::kDataDivide, coproc::Scheme::kOffload,
          coproc::Scheme::kPipelined}) {
      core::JoinConfig config;
      config.spec.algorithm = algo;
      config.spec.scheme = scheme;
      config.spec.engine = engine;
      core::CoupledJoiner joiner(config);
      auto report = joiner.Join(*workload);
      APU_CHECK_OK(report.status());
      candidates.push_back(
          {algo, scheme, report->estimated_ns, report->elapsed_ns});
    }
  }

  TablePrinter table({"plan", "model estimate(s)", "measured(s)"});
  const Candidate* best_est = &candidates[0];
  const Candidate* best_meas = &candidates[0];
  for (const auto& c : candidates) {
    if (c.estimated < best_est->estimated) best_est = &c;
    if (c.measured < best_meas->measured) best_meas = &c;
    table.AddRow({std::string(AlgorithmName(c.algo)) + "-" +
                      SchemeName(c.scheme),
                  TablePrinter::Fmt(c.estimated * 1e-9, 3),
                  TablePrinter::Fmt(c.measured * 1e-9, 3)});
  }
  table.Print();
  std::printf("\nmodel recommends: %s-%s\n", AlgorithmName(best_est->algo),
              SchemeName(best_est->scheme));
  std::printf("measured best:    %s-%s\n", AlgorithmName(best_meas->algo),
              SchemeName(best_meas->scheme));
  std::printf("recommendation is within %.1f%% of the measured best\n",
              (best_est->measured / best_meas->measured - 1.0) * 100.0);
  return 0;
}
