// Robustness study: how does the co-processed join behave across key-value
// distributions (uniform / low-skew / high-skew) and join selectivities —
// the workload dimensions of Section 5.5 — including the divergence
// grouping optimization that matters under skew.

#include <cstdio>

#include "core/coupled_joiner.h"
#include "example_common.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace apujoin;

  join::EngineOptions engine;
  examples::ApplyBackendFlags(argc, argv, &engine);

  std::printf("PHJ-PL across distributions and selectivities (2M ⋈ 4M)\n\n");
  TablePrinter table({"distribution", "selectivity", "grouping",
                      "elapsed(s)", "matches"});
  for (data::Distribution dist :
       {data::Distribution::kUniform, data::Distribution::kLowSkew,
        data::Distribution::kHighSkew}) {
    for (double sel : {0.125, 1.0}) {
      data::WorkloadSpec wspec;
      wspec.build_tuples = 2 << 20;
      wspec.probe_tuples = 4 << 20;
      wspec.distribution = dist;
      wspec.selectivity = sel;
      auto workload = data::GenerateWorkload(wspec);
      APU_CHECK_OK(workload.status());
      for (bool grouping : {false, true}) {
        core::JoinConfig config;
        config.spec.algorithm = coproc::Algorithm::kPHJ;
        config.spec.scheme = coproc::Scheme::kPipelined;
        config.spec.engine = engine;
        config.spec.engine.grouping = grouping;
        core::CoupledJoiner joiner(config);
        auto report = joiner.Join(*workload);
        APU_CHECK_OK(report.status());
        APU_CHECK(report->matches == workload->expected_matches);
        table.AddRow({DistributionName(dist), TablePrinter::FmtPercent(sel),
                      grouping ? "on" : "off",
                      TablePrinter::Fmt(report->elapsed_ns * 1e-9, 3),
                      TablePrinter::FmtCount(report->matches)});
      }
    }
  }
  table.Print();
  std::printf(
      "\nNote how skewed runs stay competitive with uniform ones — hot-key\n"
      "locality compensates the latch contention (Section 5.5) — and how\n"
      "grouping trims the divergent probe steps under skew.\n");
  return 0;
}
