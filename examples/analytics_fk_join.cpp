// Analytics scenario: a column-store foreign-key join (orders ⋈ customers),
// the workload class the paper's introduction motivates. Compares every
// co-processing scheme on the same data and reports speedups over CPU-only
// — the "is the integrated GPU worth using?" question an engine developer
// would ask.

#include <cstdio>

#include "core/coupled_joiner.h"
#include "example_common.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace apujoin;

  join::EngineOptions engine;
  examples::ApplyBackendFlags(argc, argv, &engine);

  // customers(custkey, ...) with 2M rows; orders(custkey, orderkey) with 8M
  // rows — modelled as <key, rid> column extracts, as in the paper.
  data::WorkloadSpec wspec;
  wspec.build_tuples = 2 << 20;
  wspec.probe_tuples = 8 << 20;
  wspec.selectivity = 1.0;  // every order has a customer
  auto workload = data::GenerateWorkload(wspec);
  APU_CHECK_OK(workload.status());

  std::printf("orders (8M) JOIN customers (2M) on custkey\n\n");
  TablePrinter table({"scheme", "algorithm", "elapsed(s)",
                      "speedup vs CPU-only"});
  double cpu_only = 0.0;
  for (coproc::Scheme scheme :
       {coproc::Scheme::kCpuOnly, coproc::Scheme::kGpuOnly,
        coproc::Scheme::kDataDivide, coproc::Scheme::kPipelined}) {
    for (coproc::Algorithm algo :
         {coproc::Algorithm::kSHJ, coproc::Algorithm::kPHJ}) {
      core::JoinConfig config;
      config.spec.algorithm = algo;
      config.spec.scheme = scheme;
      config.spec.engine = engine;
      core::CoupledJoiner joiner(config);
      auto report = joiner.Join(*workload);
      APU_CHECK_OK(report.status());
      APU_CHECK(report->matches == workload->expected_matches);
      if (scheme == coproc::Scheme::kCpuOnly &&
          algo == coproc::Algorithm::kPHJ) {
        cpu_only = report->elapsed_ns;
      }
      const std::string speedup =
          cpu_only > 0.0
              ? TablePrinter::Fmt(cpu_only / report->elapsed_ns, 2) + "x"
              : "-";
      table.AddRow({SchemeName(scheme), AlgorithmName(algo),
                    TablePrinter::Fmt(report->elapsed_ns * 1e-9, 3),
                    speedup});
    }
  }
  table.Print();
  std::printf(
      "\nTakeaway: on the coupled architecture, fine-grained PL keeps both\n"
      "devices busy and outperforms either processor alone.\n");
  return 0;
}
