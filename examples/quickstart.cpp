// Quickstart: run one co-processed hash join through the public facade.
//
//   $ ./build/examples/quickstart
//
// Generates a 1M x 4M foreign-key workload, joins it with the default
// configuration (PHJ + fine-grained pipelined co-processing on the coupled
// APU), and prints the result count, the time breakdown and the per-step
// schedule the cost model chose.

#include <cstdio>

#include "core/coupled_joiner.h"
#include "example_common.h"

int main(int argc, char** argv) {
  using namespace apujoin;

  // 1. Describe and generate a workload (or bring your own Relations).
  data::WorkloadSpec wspec;
  wspec.build_tuples = 1 << 20;   // R: 1M tuples, unique keys
  wspec.probe_tuples = 4 << 20;   // S: 4M tuples, every tuple matches
  auto workload = data::GenerateWorkload(wspec);
  APU_CHECK_OK(workload.status());

  // 2. Create a joiner. Defaults: coupled APU platform, PHJ, PL scheme,
  //    shared hash table, optimized allocator with 2KB blocks, analytic
  //    sim backend (--backend=threads executes on a real thread pool).
  core::JoinConfig config;
  examples::ApplyBackendFlags(argc, argv, &config.spec.engine);
  core::CoupledJoiner joiner(config);

  // 3. Join.
  auto report = joiner.Join(*workload);
  APU_CHECK_OK(report.status());

  // 4. Inspect the outcome.
  std::printf("matches:        %llu\n",
              static_cast<unsigned long long>(report->matches));
  std::printf("elapsed:        %.3f s (%s)\n", report->elapsed_sec(),
              config.spec.engine.backend == exec::BackendKind::kSim
                  ? "simulated APU time"
                  : "wall-clock on the thread pool");
  std::printf("model estimate: %.3f s\n", report->estimated_ns * 1e-9);
  std::printf("lock overhead:  %.3f s\n", report->lock_ns * 1e-9);
  std::printf("\nphase breakdown:\n");
  for (int p = 0; p < simcl::kNumPhases; ++p) {
    const auto phase = static_cast<simcl::Phase>(p);
    const double ns = report->breakdown.Get(phase);
    if (ns > 0.0) {
      std::printf("  %-13s %.3f s\n", simcl::PhaseName(phase), ns * 1e-9);
    }
  }
  std::printf("\nper-step schedule (CPU share chosen by the cost model):\n");
  for (const auto& s : report->steps) {
    std::printf("  %-14s %-3s CPU %3.0f%% / GPU %3.0f%%\n", s.phase.c_str(),
                s.name.c_str(), s.ratio * 100.0, (1.0 - s.ratio) * 100.0);
  }
  return 0;
}
