// Adaptive join session: the same query arriving over and over — the
// serving shape every multi-query deployment has — converges from
// analytic-guess CPU/GPU ratios to hardware-true ones.
//
// A CoupledJoiner with tune != off closes the loop automatically: each
// Join() folds its measured per-step timings into the session's
// OnlineCalibrator, and the next Join() re-optimizes its ratios on the
// measured table (on real backends with the serial-lane composition a
// host thread pool actually has). Run with --backend=threads to watch
// wall-clock times settle; --tune=off restores the static baseline.

#include <cstdio>
#include <cstring>

#include "core/coupled_joiner.h"
#include "example_common.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace apujoin;

  join::EngineOptions engine;
  engine.tune = cost::TuneMode::kOnline;  // this example's point
  examples::ApplyBackendFlags(argc, argv, &engine);
  // Positional sizes: adaptive_session [R] [S].
  uint64_t sizes[2] = {1ull << 20, 4ull << 20};
  int pos = 0;
  for (int i = 1; i < argc && pos < 2; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      sizes[pos++] = std::strtoull(argv[i], nullptr, 10);
    }
  }

  data::WorkloadSpec wspec;
  wspec.build_tuples = sizes[0];
  wspec.probe_tuples = sizes[1];
  wspec.distribution = data::Distribution::kHighSkew;
  auto workload = data::GenerateWorkload(wspec);
  APU_CHECK_OK(workload.status());

  core::JoinConfig config;
  config.spec.algorithm = coproc::Algorithm::kSHJ;
  config.spec.scheme = coproc::Scheme::kPipelined;
  config.spec.engine = engine;
  core::CoupledJoiner joiner(config);

  std::printf("session of 8 identical skewed joins, backend=%s tune=%s\n\n",
              exec::BackendKindName(engine.backend),
              cost::TuneModeName(engine.tune));
  TablePrinter table({"query", "time(s)", "estimate(s)", "p1 cpu%",
                      "p3 cpu%", "p4 cpu%"});
  double first_ns = 0.0;
  double last_ns = 0.0;
  for (int q = 1; q <= 8; ++q) {
    auto report = joiner.Join(*workload);
    APU_CHECK_OK(report.status());
    APU_CHECK(report->matches == workload->expected_matches);
    const auto& pr = report->probe_ratios;
    table.AddRow({std::to_string(q), TablePrinter::Fmt(report->elapsed_sec(), 3),
                  TablePrinter::Fmt(report->estimated_ns * 1e-9, 3),
                  TablePrinter::FmtPercent(pr.empty() ? 0.0 : pr[0], 0),
                  TablePrinter::FmtPercent(pr.size() > 2 ? pr[2] : 0.0, 0),
                  TablePrinter::FmtPercent(pr.size() > 3 ? pr[3] : 0.0, 0)});
    if (q == 1) first_ns = report->elapsed_ns;
    last_ns = report->elapsed_ns;
  }
  table.Print();

  const auto& calib = joiner.tuner().calibrator();
  std::printf("\nmeasured table covers %zu step kinds after %d runs\n",
              calib.size(), joiner.tuner().runs());
  if (calib.Has("p4", simcl::DeviceId::kCpu)) {
    std::printf("p4 (emit) measured: cpu %.2f ns/item, gpu %.2f ns/item\n",
                calib.UnitCostNs("p4", simcl::DeviceId::kCpu),
                calib.UnitCostNs("p4", simcl::DeviceId::kGpu));
  }
  std::printf("query 8 vs query 1: %.2fx\n", first_ns / last_ns);
  return 0;
}
