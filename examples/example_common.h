// Shared flag parsing for the examples: every example accepts the common
// harness flags (core/harness_flags.h) — --backend=sim|threads,
// --threads=N, --tune=off|once|online — mirroring the bench harness, and
// passes positional arguments through for the example to consume. The
// parsing itself lives in core::ParseHarnessArg; this wrapper only adds
// the examples' pass-through policy.

#ifndef APUJOIN_EXAMPLES_EXAMPLE_COMMON_H_
#define APUJOIN_EXAMPLES_EXAMPLE_COMMON_H_

#include <cstdio>
#include <cstdlib>

#include "core/harness_flags.h"
#include "join/options.h"

namespace apujoin::examples {

/// Parses the shared harness flags; leaves positional arguments for the
/// example to consume. Exits on an unknown --flag.
inline core::HarnessFlags ParseFlags(int argc, char** argv) {
  core::HarnessFlags flags;
  for (int i = 1; i < argc; ++i) {
    switch (core::ParseHarnessArg(argv[i], &flags)) {
      case core::HarnessArg::kConsumed:
      case core::HarnessArg::kPositional:  // the example consumes it
        break;
      case core::HarnessArg::kInvalid:
        std::exit(2);
      case core::HarnessArg::kUnknownFlag:
        std::fprintf(stderr,
                     "usage: %s [--backend=sim|threads] [--threads=N] "
                     "[--morsel=N] [--stream=serial|pipelined] "
                     "[--tune=off|once|online]\n",
                     argv[0]);
        std::exit(2);
    }
  }
  if (!flags.json_path.empty()) {
    // Only the bench harness has a JSON emitter; refusing beats silently
    // never writing the file the caller asked for.
    std::fprintf(stderr, "%s: --json is supported by the bench binaries "
                 "only\n", argv[0]);
    std::exit(2);
  }
  return flags;
}

/// Applies the shared flags to `engine`, preserving the examples' historic
/// one-call surface.
inline void ApplyBackendFlags(int argc, char** argv,
                              join::EngineOptions* engine) {
  // An example may pre-set its own defaults (e.g. join_server defaults to
  // the threads backend); flags only override what was given explicitly.
  const join::EngineOptions defaults = *engine;
  const core::HarnessFlags flags = ParseFlags(argc, argv);
  core::ApplyHarnessFlags(flags, engine);
  if (!flags.backend_set) engine->backend = defaults.backend;
  if (!flags.threads_set) engine->threads = defaults.threads;
  if (!flags.morsel_set) engine->morsel_items = defaults.morsel_items;
  if (!flags.stream_set) engine->stream = defaults.stream;
  if (!flags.tune_set) engine->tune = defaults.tune;
}

}  // namespace apujoin::examples

#endif  // APUJOIN_EXAMPLES_EXAMPLE_COMMON_H_
