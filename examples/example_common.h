// Shared flag parsing for the examples: every example accepts
// --backend=sim|threads (analytic simulator vs real thread-pool execution),
// --threads=N and --tune=off|once|online, mirroring the bench harness.

#ifndef APUJOIN_EXAMPLES_EXAMPLE_COMMON_H_
#define APUJOIN_EXAMPLES_EXAMPLE_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "join/options.h"

namespace apujoin::examples {

/// Applies --backend/--threads flags to `engine`; leaves positional
/// arguments for the example to consume. Exits on an unknown --flag.
inline void ApplyBackendFlags(int argc, char** argv,
                              join::EngineOptions* engine) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--tune=", 7) == 0) {
      if (!cost::ParseTuneMode(arg + 7, &engine->tune)) {
        std::fprintf(stderr,
                     "invalid value in '%s' (want --tune=off|once|online)\n",
                     arg);
        std::exit(2);
      }
      continue;
    }
    switch (exec::ParseBackendFlag(arg, &engine->backend,
                                   &engine->backend_threads)) {
      case exec::FlagParse::kOk:
        break;
      case exec::FlagParse::kInvalid:
        std::fprintf(stderr,
                     "invalid value in '%s' (want --backend=sim|threads, "
                     "--threads=N)\n",
                     arg);
        std::exit(2);
      case exec::FlagParse::kNotMatched:
        if (std::strncmp(arg, "--", 2) == 0) {
          std::fprintf(stderr,
                       "usage: %s [--backend=sim|threads] [--threads=N] "
                       "[--tune=off|once|online]\n",
                       argv[0]);
          std::exit(2);
        }
        break;  // positional; the example consumes it
    }
  }
}

}  // namespace apujoin::examples

#endif  // APUJOIN_EXAMPLES_EXAMPLE_COMMON_H_
